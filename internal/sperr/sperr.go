// Package sperr implements SPERR-lite: a wavelet-transform compressor
// standing in for SPERR in the paper's evaluation.
//
// The pipeline mirrors SPERR's structure: a multi-level CDF 9/7 wavelet
// transform (lifting scheme with symmetric extension, applied separably in
// 3D), scalar quantization of the wavelet coefficients with Huffman coding
// (substituting for SPECK's bit-plane coder), and SPERR's outlier-correction
// pass that restores a strict point-wise error bound after the inverse
// transform.
//
// The profile the paper relies on is preserved: the global transform
// captures widespread high-frequency structure (best-in-class quality on
// such data), progressive-friendly multi-resolution structure, and a high
// computational cost — the whole volume is transformed once forward, once
// inverse during compression (for the correction pass), and once inverse
// during decompression.
package sperr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"stz/internal/bitio"
	"stz/internal/grid"
	"stz/internal/huffman"
	"stz/internal/parallel"
	"stz/internal/quant"
	"stz/internal/scratch"
)

// Magic identifies a version-1 SPERR-lite stream; MagicV2 a version-2
// stream, identical except that the quantized-coefficient plan is
// entropy-coded with the multi-lane Huffman payload (huffman.EncodeLanes).
// Writers emit v2; readers accept both.
const (
	Magic   = uint32(0x52455053) // "SPER"
	MagicV2 = uint32(0x32525053) // "SPR2"
)

// ErrFormat reports a malformed stream.
var ErrFormat = errors.New("sperr: malformed stream")

// CDF 9/7 lifting constants (JPEG2000 irreversible filter).
const (
	lifA = -1.586134342059924
	lifB = -0.052980118572961
	lifG = 0.882911075530934
	lifD = 0.443506852043971
	lifK = 1.149604398860241
)

// Options configures compression.
type Options struct {
	// Tolerance is the absolute error bound.
	Tolerance float64
	// Levels caps the wavelet depth; 0 selects automatically.
	Levels int
	// Workers > 1 parallelizes the per-line transform passes.
	Workers int
}

// sym reflects index i into [0, n) with whole-sample symmetry.
func sym(i, n int) int {
	if n == 1 {
		return 0
	}
	period := 2 * (n - 1)
	if i < 0 {
		i = -i
	}
	i %= period
	if i >= n {
		i = period - i
	}
	return i
}

// fwdLine applies the forward CDF 9/7 transform to line[0:n] in place and
// deinterleaves it into [low | high] using scratch.
func fwdLine(line, scratch []float64, n int) {
	if n < 2 {
		return
	}
	for i := 1; i < n; i += 2 {
		line[i] += lifA * (line[i-1] + line[sym(i+1, n)])
	}
	for i := 0; i < n; i += 2 {
		line[i] += lifB * (line[sym(i-1, n)] + line[sym(i+1, n)])
	}
	for i := 1; i < n; i += 2 {
		line[i] += lifG * (line[i-1] + line[sym(i+1, n)])
	}
	for i := 0; i < n; i += 2 {
		line[i] += lifD * (line[sym(i-1, n)] + line[sym(i+1, n)])
	}
	nLow := (n + 1) / 2
	for i := 0; i < n; i += 2 {
		scratch[i/2] = line[i] * (1 / lifK)
	}
	for i := 1; i < n; i += 2 {
		scratch[nLow+i/2] = line[i] * lifK
	}
	copy(line[:n], scratch[:n])
}

// invLine inverts fwdLine.
func invLine(line, scratch []float64, n int) {
	if n < 2 {
		return
	}
	nLow := (n + 1) / 2
	for i := 0; i < n; i += 2 {
		scratch[i] = line[i/2] * lifK
	}
	for i := 1; i < n; i += 2 {
		scratch[i] = line[nLow+i/2] * (1 / lifK)
	}
	copy(line[:n], scratch[:n])
	for i := 0; i < n; i += 2 {
		line[i] -= lifD * (line[sym(i-1, n)] + line[sym(i+1, n)])
	}
	for i := 1; i < n; i += 2 {
		line[i] -= lifG * (line[i-1] + line[sym(i+1, n)])
	}
	for i := 0; i < n; i += 2 {
		line[i] -= lifB * (line[sym(i-1, n)] + line[sym(i+1, n)])
	}
	for i := 1; i < n; i += 2 {
		line[i] -= lifA * (line[i-1] + line[sym(i+1, n)])
	}
}

// autoLevels picks the wavelet depth for the dims.
func autoLevels(nz, ny, nx int) int {
	minDim := 1 << 30
	for _, d := range []int{nz, ny, nx} {
		if d > 1 && d < minDim {
			minDim = d
		}
	}
	if minDim == 1<<30 {
		return 1
	}
	l := 0
	for minDim>>(uint(l)+1) >= 4 && l < 4 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// activeDims returns the dyadic active-region dims after lv levels.
func activeDims(nz, ny, nx, lv int) (int, int, int) {
	for i := 0; i < lv; i++ {
		if nz > 1 {
			nz = (nz + 1) / 2
		}
		if ny > 1 {
			ny = (ny + 1) / 2
		}
		if nx > 1 {
			nx = (nx + 1) / 2
		}
	}
	return nz, ny, nx
}

// linePass runs fn(line, tmp, i) for i in [0, n) on up to workers
// goroutines, handing each worker one leased (line, tmp) buffer pair of
// length lineLen instead of allocating two slices per line — the wavelet
// passes are the allocation hot spot of the codec. fn must overwrite line
// fully before reading it (fwdLine/invLine do).
func linePass(n, lineLen, workers int, fn func(line, tmp []float64, i int)) {
	parallel.ForBlocks(n, workers, workers, func(lo, hi int) {
		line := scratch.F64.Lease(lineLen)
		tmp := scratch.F64.Lease(lineLen)
		for i := lo; i < hi; i++ {
			fn(line, tmp, i)
		}
		scratch.F64.Release(line)
		scratch.F64.Release(tmp)
	})
}

// forward3D applies nlev levels of the separable forward transform in
// place over work (row-major nz×ny×nx).
func forward3D(work []float64, nz, ny, nx, nlev, workers int) {
	az, ay, ax := nz, ny, nx
	for l := 0; l < nlev; l++ {
		if ax > 1 {
			linePass(az*ay, ax, workers, func(line, tmp []float64, zy int) {
				z, y := zy/ay, zy%ay
				row := (z*ny + y) * nx
				copy(line, work[row:row+ax])
				fwdLine(line, tmp, ax)
				copy(work[row:row+ax], line)
			})
		}
		if ay > 1 {
			linePass(az*ax, ay, workers, func(line, tmp []float64, zx int) {
				z, x := zx/ax, zx%ax
				for y := 0; y < ay; y++ {
					line[y] = work[(z*ny+y)*nx+x]
				}
				fwdLine(line, tmp, ay)
				for y := 0; y < ay; y++ {
					work[(z*ny+y)*nx+x] = line[y]
				}
			})
		}
		if az > 1 {
			linePass(ay*ax, az, workers, func(line, tmp []float64, yx int) {
				y, x := yx/ax, yx%ax
				for z := 0; z < az; z++ {
					line[z] = work[(z*ny+y)*nx+x]
				}
				fwdLine(line, tmp, az)
				for z := 0; z < az; z++ {
					work[(z*ny+y)*nx+x] = line[z]
				}
			})
		}
		az, ay, ax = activeDims(az, ay, ax, 1)
	}
}

// inverse3D inverts forward3D.
func inverse3D(work []float64, nz, ny, nx, nlev, workers int) {
	for l := nlev - 1; l >= 0; l-- {
		az, ay, ax := activeDims(nz, ny, nx, l)
		if az > 1 {
			linePass(ay*ax, az, workers, func(line, tmp []float64, yx int) {
				y, x := yx/ax, yx%ax
				for z := 0; z < az; z++ {
					line[z] = work[(z*ny+y)*nx+x]
				}
				invLine(line, tmp, az)
				for z := 0; z < az; z++ {
					work[(z*ny+y)*nx+x] = line[z]
				}
			})
		}
		if ay > 1 {
			linePass(az*ax, ay, workers, func(line, tmp []float64, zx int) {
				z, x := zx/ax, zx%ax
				for y := 0; y < ay; y++ {
					line[y] = work[(z*ny+y)*nx+x]
				}
				invLine(line, tmp, ay)
				for y := 0; y < ay; y++ {
					work[(z*ny+y)*nx+x] = line[y]
				}
			})
		}
		if ax > 1 {
			linePass(az*ay, ax, workers, func(line, tmp []float64, zy int) {
				z, y := zy/ay, zy%ay
				row := (z*ny + y) * nx
				copy(line, work[row:row+ax])
				invLine(line, tmp, ax)
				copy(work[row:row+ax], line)
			})
		}
	}
}

func dtypeOf[T grid.Float]() byte {
	var v T
	if _, ok := any(v).(float32); ok {
		return 4
	}
	return 8
}

// Compress encodes g under o.Tolerance.
func Compress[T grid.Float](g *grid.Grid[T], o Options) ([]byte, error) {
	if !(o.Tolerance > 0) || math.IsInf(o.Tolerance, 0) {
		return nil, fmt.Errorf("sperr: invalid tolerance %g", o.Tolerance)
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("sperr: empty grid")
	}
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	nlev := o.Levels
	if nlev <= 0 || nlev > 6 {
		nlev = autoLevels(g.Nz, g.Ny, g.Nx)
	}

	// Forward transform on a float64 working copy. All whole-grid work
	// arrays are scratch leases, fully overwritten before use.
	work := scratch.F64.Lease(g.Len())
	defer scratch.F64.Release(work)
	for i, v := range g.Data {
		work[i] = float64(v)
	}
	forward3D(work, g.Nz, g.Ny, g.Nx, nlev, workers)

	// Quantize coefficients against zero.
	step := o.Tolerance
	q := quant.Quantizer{EB: step, Radius: quant.DefaultRadius}
	codes := scratch.U16.Lease(len(work))
	defer scratch.U16.Release(codes)
	outliers := scratch.Bytes.Lease(64 + len(work))[:0]
	defer func() { scratch.Bytes.Release(outliers) }()
	var nOut uint32
	coeffRec := scratch.F64.Lease(len(work))
	defer scratch.F64.Release(coeffRec)
	for i, cv := range work {
		code, rec, ok := q.Quantize(cv, 0)
		if !ok {
			outliers = binary.LittleEndian.AppendUint64(outliers, math.Float64bits(cv))
			nOut++
			codes[i] = 0
			coeffRec[i] = cv
			continue
		}
		codes[i] = code
		coeffRec[i] = rec
	}
	hblob := huffman.EncodeLanes(codes, q.Alphabet())

	// Correction pass: invert the reconstructed coefficients and record
	// corrections for every point whose error exceeds the tolerance.
	inverse3D(coeffRec, g.Nz, g.Ny, g.Nx, nlev, workers)
	cw := bitio.NewWriter(1024)
	var nCorr uint64
	prevIdx := -1
	for i := range coeffRec {
		rec := T(coeffRec[i])
		r := float64(g.Data[i]) - float64(rec)
		if math.Abs(r) <= o.Tolerance && !math.IsNaN(r) {
			continue
		}
		// Correction: either a quantized residual or a raw value.
		cw.WriteGamma(uint64(i - prevIdx - 1))
		prevIdx = i
		k := math.Round(r / o.Tolerance)
		corrected := float64(rec) + k*o.Tolerance
		if !math.IsNaN(r) && math.Abs(float64(T(corrected))-float64(g.Data[i])) <= o.Tolerance &&
			math.Abs(k) < 1<<40 {
			cw.WriteBit(0)
			cw.WriteGamma(zigzag(int64(k)))
		} else {
			cw.WriteBit(1)
			writeRawBits(cw, g.Data[i])
		}
		nCorr++
	}
	corrBlob := cw.Bytes()

	out := make([]byte, 47, 47+len(outliers)+len(hblob)+len(corrBlob))
	binary.LittleEndian.PutUint32(out[0:], MagicV2)
	out[4] = dtypeOf[T]()
	out[5] = byte(nlev)
	binary.LittleEndian.PutUint32(out[6:], uint32(g.Nz))
	binary.LittleEndian.PutUint32(out[10:], uint32(g.Ny))
	binary.LittleEndian.PutUint32(out[14:], uint32(g.Nx))
	binary.LittleEndian.PutUint64(out[18:], math.Float64bits(o.Tolerance))
	binary.LittleEndian.PutUint32(out[26:], uint32(nOut))
	binary.LittleEndian.PutUint32(out[30:], uint32(len(hblob)))
	binary.LittleEndian.PutUint64(out[34:], nCorr)
	binary.LittleEndian.PutUint32(out[42:], uint32(len(corrBlob)))
	out = append(out, outliers...)
	out = append(out, hblob...)
	out = append(out, corrBlob...)
	return out, nil
}

// Decompress reconstructs the full grid with up to workers goroutines for
// the inverse transform (0 = serial).
func DecompressWorkers[T grid.Float](data []byte, workers int) (*grid.Grid[T], error) {
	if workers < 1 {
		workers = 1
	}
	if len(data) < 47 {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	version := 0
	switch binary.LittleEndian.Uint32(data) {
	case Magic:
		version = 1
	case MagicV2:
		version = 2
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if data[4] != dtypeOf[T]() {
		return nil, fmt.Errorf("%w: element type mismatch", ErrFormat)
	}
	nlev := int(data[5])
	nz := int(binary.LittleEndian.Uint32(data[6:]))
	ny := int(binary.LittleEndian.Uint32(data[10:]))
	nx := int(binary.LittleEndian.Uint32(data[14:]))
	tol := math.Float64frombits(binary.LittleEndian.Uint64(data[18:]))
	nOut := int(binary.LittleEndian.Uint32(data[26:]))
	hlen := int(binary.LittleEndian.Uint32(data[30:]))
	nCorr := binary.LittleEndian.Uint64(data[34:])
	clen := int(binary.LittleEndian.Uint32(data[42:]))
	if nz <= 0 || ny <= 0 || nx <= 0 || int64(nz)*int64(ny)*int64(nx) > 1<<33 ||
		nlev < 1 || nlev > 6 || !(tol > 0) {
		return nil, fmt.Errorf("%w: bad header", ErrFormat)
	}
	pos := 47
	if pos+8*nOut+hlen+clen > len(data) {
		return nil, fmt.Errorf("%w: truncated payload", ErrFormat)
	}
	outData := data[pos : pos+8*nOut]
	hblob := data[pos+8*nOut : pos+8*nOut+hlen]
	corrBlob := data[pos+8*nOut+hlen : pos+8*nOut+hlen+clen]

	q := quant.Quantizer{EB: tol, Radius: quant.DefaultRadius}
	n := nz * ny * nx
	codesBuf := scratch.U16.Lease(n)
	defer scratch.U16.Release(codesBuf)
	var codes []uint16
	var err error
	if version >= 2 {
		codes, err = huffman.DecodeLanesInto(codesBuf[:0], hblob, q.Alphabet(), workers)
	} else {
		codes, err = huffman.DecodeInto(codesBuf[:0], hblob, q.Alphabet())
	}
	if err != nil {
		return nil, fmt.Errorf("sperr: %w", err)
	}
	if len(codes) != n {
		return nil, fmt.Errorf("%w: coefficient count mismatch", ErrFormat)
	}
	work := scratch.F64.Lease(n)
	defer scratch.F64.Release(work)
	oi := 0
	for i, code := range codes {
		if code == 0 {
			if oi >= nOut {
				return nil, fmt.Errorf("%w: outliers exhausted", ErrFormat)
			}
			work[i] = math.Float64frombits(binary.LittleEndian.Uint64(outData[8*oi:]))
			oi++
			continue
		}
		work[i] = q.Dequantize(code, 0)
	}
	inverse3D(work, nz, ny, nx, nlev, workers)

	out := grid.New[T](nz, ny, nx)
	for i, v := range work {
		out.Data[i] = T(v)
	}
	// Apply corrections.
	cr := bitio.NewReader(corrBlob)
	idx := uint64(0)
	first := true
	for c := uint64(0); c < nCorr; c++ {
		delta, err := cr.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("%w: corrections truncated", ErrFormat)
		}
		if first {
			idx = delta
			first = false
		} else {
			idx += delta + 1
		}
		if idx >= uint64(n) {
			return nil, fmt.Errorf("%w: correction index out of range", ErrFormat)
		}
		kind, err := cr.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("%w: corrections truncated", ErrFormat)
		}
		if kind == 0 {
			zk, err := cr.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("%w: corrections truncated", ErrFormat)
			}
			k := unzigzag(zk)
			out.Data[idx] = T(float64(out.Data[idx]) + float64(k)*tol)
		} else {
			v, err := readRawBits[T](cr)
			if err != nil {
				return nil, fmt.Errorf("%w: corrections truncated", ErrFormat)
			}
			out.Data[idx] = v
		}
	}
	return out, nil
}

// Decompress reconstructs the full grid serially.
func Decompress[T grid.Float](data []byte) (*grid.Grid[T], error) {
	return DecompressWorkers[T](data, 1)
}

func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

func writeRawBits[T grid.Float](w *bitio.Writer, v T) {
	switch x := any(v).(type) {
	case float32:
		w.WriteBits(uint64(math.Float32bits(x)), 32)
	case float64:
		w.WriteBits(math.Float64bits(x), 64)
	}
}

func readRawBits[T grid.Float](r *bitio.Reader) (T, error) {
	var v T
	if _, ok := any(v).(float32); ok {
		bits, err := r.ReadBits(32)
		if err != nil {
			return v, err
		}
		return T(math.Float32frombits(uint32(bits))), nil
	}
	bits, err := r.ReadBits(64)
	if err != nil {
		return v, err
	}
	return T(math.Float64frombits(bits)), nil
}
