package sperr

import (
	"math"
	"math/rand"
	"testing"

	"stz/internal/grid"
)

func TestSymReflection(t *testing.T) {
	// n=5: valid indices 0..4, reflection period 8.
	cases := map[int]int{-1: 1, -2: 2, 0: 0, 4: 4, 5: 3, 6: 2, 7: 1, 8: 0}
	for in, want := range cases {
		if got := sym(in, 5); got != want {
			t.Errorf("sym(%d,5)=%d want %d", in, got, want)
		}
	}
	if sym(3, 1) != 0 {
		t.Error("sym with n=1 must clamp to 0")
	}
}

func TestLineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 8, 17, 64, 100} {
		line := make([]float64, n)
		orig := make([]float64, n)
		scratch := make([]float64, n)
		for i := range line {
			line[i] = rng.NormFloat64()
			orig[i] = line[i]
		}
		fwdLine(line, scratch, n)
		invLine(line, scratch, n)
		for i := range line {
			if math.Abs(line[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d: line round-trip error %g at %d", n, line[i]-orig[i], i)
			}
		}
	}
}

func TestLineDecorrelatesSmoothSignal(t *testing.T) {
	// A smooth signal must concentrate energy in the low band.
	const n = 64
	line := make([]float64, n)
	scratch := make([]float64, n)
	for i := range line {
		line[i] = math.Sin(float64(i) / 9)
	}
	fwdLine(line, scratch, n)
	var lowE, highE float64
	for i := 0; i < n/2; i++ {
		lowE += line[i] * line[i]
	}
	for i := n / 2; i < n; i++ {
		highE += line[i] * line[i]
	}
	if lowE < 100*highE {
		t.Fatalf("poor decorrelation: low %g, high %g", lowE, highE)
	}
}

func Test3DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const nz, ny, nx = 12, 9, 17
	work := make([]float64, nz*ny*nx)
	orig := make([]float64, len(work))
	for i := range work {
		work[i] = rng.NormFloat64()
		orig[i] = work[i]
	}
	forward3D(work, nz, ny, nx, 2, 1)
	inverse3D(work, nz, ny, nx, 2, 1)
	for i := range work {
		if math.Abs(work[i]-orig[i]) > 1e-9 {
			t.Fatalf("3D round-trip error at %d: %g", i, work[i]-orig[i])
		}
	}
}

func smoothField[T grid.Float](nz, ny, nx int, seed int64) *grid.Grid[T] {
	g := grid.New[T](nz, ny, nx)
	rng := rand.New(rand.NewSource(seed))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := math.Sin(float64(z)/6)*math.Cos(float64(y)/5) + 0.4*math.Sin(float64(x)/7) +
					0.02*rng.NormFloat64()
				g.Set(z, y, x, T(v))
			}
		}
	}
	return g
}

func checkBound[T grid.Float](t *testing.T, a, b *grid.Grid[T], eb float64) {
	t.Helper()
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i]) - float64(b.Data[i])); d > eb {
			t.Fatalf("bound violated at %d: %g > %g", i, d, eb)
		}
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	g := smoothField[float64](20, 20, 20, 3)
	for _, tol := range []float64{1e-2, 1e-4} {
		enc, err := Compress(g, Options{Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress[float64](enc)
		if err != nil {
			t.Fatal(err)
		}
		checkBound(t, g, dec, tol)
	}
}

func TestRoundTripFloat32(t *testing.T) {
	g := smoothField[float32](16, 18, 22, 4)
	const tol = 1e-3
	enc, err := Compress(g, Options{Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float32](enc)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, g, dec, tol)
}

func TestNoisyDataStillBounded(t *testing.T) {
	g := grid.New[float64](10, 10, 10)
	rng := rand.New(rand.NewSource(5))
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64() * 50
	}
	const tol = 0.01
	enc, err := Compress(g, Options{Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float64](enc)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, g, dec, tol)
}

func TestOutlierValues(t *testing.T) {
	g := smoothField[float64](8, 8, 8, 6)
	g.Data[0] = 1e18
	g.Data[100] = -1e18
	const tol = 1e-4
	enc, err := Compress(g, Options{Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float64](enc)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, g, dec, tol)
}

func TestParallelMatchesSerial(t *testing.T) {
	g := smoothField[float64](16, 16, 16, 7)
	a, err := Compress(g, Options{Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(g, Options{Tolerance: 1e-3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("parallel stream size differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel stream differs")
		}
	}
	// Parallel decompression must equal serial decompression exactly.
	ds, err := Decompress[float64](a)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := DecompressWorkers[float64](a, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Data {
		if ds.Data[i] != dp.Data[i] {
			t.Fatal("parallel decompression differs")
		}
	}
}

func TestSmoothCompressesWell(t *testing.T) {
	// Noise-free smooth field: the wavelet must concentrate energy and
	// compress far below the raw size.
	g := grid.New[float32](32, 32, 32)
	for z := 0; z < 32; z++ {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				g.Set(z, y, x, float32(math.Sin(float64(z)/6)*math.Cos(float64(y)/5)+0.4*math.Sin(float64(x)/7)))
			}
		}
	}
	enc, err := Compress(g, Options{Tolerance: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(g.Len()*4) / float64(len(enc))
	if cr < 10 {
		t.Fatalf("smooth field CR only %.1f", cr)
	}
}

func TestInvalid(t *testing.T) {
	g := smoothField[float64](8, 8, 8, 9)
	if _, err := Compress(g, Options{Tolerance: 0}); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := Decompress[float64]([]byte("bogus data!!")); err == nil {
		t.Fatal("garbage accepted")
	}
	enc, _ := Compress(g, Options{Tolerance: 1e-3})
	if _, err := Decompress[float32](enc); err == nil {
		t.Fatal("dtype mismatch accepted")
	}
	for cut := 0; cut < len(enc); cut += 23 {
		_, _ = Decompress[float64](enc[:cut]) // must not panic
	}
}

func TestSmallAndOddDims(t *testing.T) {
	for _, dims := range [][3]int{{2, 2, 2}, {1, 32, 32}, {5, 7, 11}, {1, 1, 64}} {
		g := smoothField[float64](dims[0], dims[1], dims[2], 10)
		enc, err := Compress(g, Options{Tolerance: 1e-3})
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		dec, err := Decompress[float64](enc)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		checkBound(t, g, dec, 1e-3)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40)} {
		if unzigzag(zigzag(v)) != v {
			t.Fatalf("zigzag round trip failed for %d", v)
		}
	}
}
