package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xff, 0)
	w.WriteBits(1, 1)
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(1)
	if err != nil || v != 1 {
		t.Fatalf("got %d, %v", v, err)
	}
}

func TestWriteBitsFullWord(t *testing.T) {
	w := NewWriter(0)
	const v = uint64(0xdeadbeefcafebabe)
	w.WriteBits(v, 64)
	w.WriteBits(0x3, 2)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("got %#x want %#x", got, v)
	}
	got2, err := r.ReadBits(2)
	if err != nil || got2 != 3 {
		t.Fatalf("got %d, %v", got2, err)
	}
}

func TestWriteBitsStraddleWordBoundary(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x1, 60)   // leaves 4 free bits in acc
	w.WriteBits(0xabc, 12) // straddles
	r := NewReader(w.Bytes())
	a, err := r.ReadBits(60)
	if err != nil || a != 1 {
		t.Fatalf("a=%d err=%v", a, err)
	}
	b, err := r.ReadBits(12)
	if err != nil || b != 0xabc {
		t.Fatalf("b=%#x err=%v", b, err)
	}
}

func TestReadPastEnd(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("padded byte should satisfy 8 bits: %v", err)
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestReadBitPastEnd(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint{0, 1, 2, 7, 31, 100}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("unary %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("unary %d: got %d want %d", i, got, want)
		}
	}
}

func TestPeekSkip(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101101, 6)
	w.WriteBits(0xff, 8)
	r := NewReader(w.Bytes())
	v, n := r.Peek(6)
	if n != 6 || v != 0b101101 {
		t.Fatalf("peek got %#b (%d bits)", v, n)
	}
	// Peek must not consume.
	v2, _ := r.Peek(6)
	if v2 != v {
		t.Fatalf("second peek differs: %#b vs %#b", v2, v)
	}
	if err := r.Skip(6); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(8)
	if err != nil || got != 0xff {
		t.Fatalf("got %#x err=%v", got, err)
	}
}

func TestPeekNearEnd(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1, 1)
	r := NewReader(w.Bytes())
	_, n := r.Peek(20)
	if n != 8 { // one padded byte
		t.Fatalf("avail=%d want 8", n)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(0)
	if w.BitLen() != 0 {
		t.Fatalf("empty BitLen=%d", w.BitLen())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen=%d want 13", w.BitLen())
	}
	for i := 0; i < 8; i++ {
		w.WriteBits(0, 64)
	}
	if w.BitLen() != 13+8*64 {
		t.Fatalf("BitLen=%d want %d", w.BitLen(), 13+8*64)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%200 + 1
		type rec struct {
			v uint64
			w uint
		}
		recs := make([]rec, count)
		wtr := NewWriter(0)
		for i := range recs {
			width := uint(rng.Intn(64) + 1)
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			recs[i] = rec{v, width}
			wtr.WriteBits(v, width)
		}
		rdr := NewReader(wtr.Bytes())
		for _, rc := range recs {
			got, err := rdr.ReadBits(rc.w)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsRemaining(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0, 16)
	r := NewReader(w.Bytes())
	if r.BitsRemaining() != 16 {
		t.Fatalf("remaining=%d want 16", r.BitsRemaining())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.BitsRemaining() != 11 {
		t.Fatalf("remaining=%d want 11", r.BitsRemaining())
	}
}
