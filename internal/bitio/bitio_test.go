package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xff, 0)
	w.WriteBits(1, 1)
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(1)
	if err != nil || v != 1 {
		t.Fatalf("got %d, %v", v, err)
	}
}

func TestWriteBitsFullWord(t *testing.T) {
	w := NewWriter(0)
	const v = uint64(0xdeadbeefcafebabe)
	w.WriteBits(v, 64)
	w.WriteBits(0x3, 2)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("got %#x want %#x", got, v)
	}
	got2, err := r.ReadBits(2)
	if err != nil || got2 != 3 {
		t.Fatalf("got %d, %v", got2, err)
	}
}

func TestWriteBitsStraddleWordBoundary(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x1, 60)   // leaves 4 free bits in acc
	w.WriteBits(0xabc, 12) // straddles
	r := NewReader(w.Bytes())
	a, err := r.ReadBits(60)
	if err != nil || a != 1 {
		t.Fatalf("a=%d err=%v", a, err)
	}
	b, err := r.ReadBits(12)
	if err != nil || b != 0xabc {
		t.Fatalf("b=%#x err=%v", b, err)
	}
}

func TestReadPastEnd(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("padded byte should satisfy 8 bits: %v", err)
	}
	if _, err := r.ReadBits(1); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestReadBitPastEnd(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint{0, 1, 2, 7, 31, 100}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("unary %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("unary %d: got %d want %d", i, got, want)
		}
	}
}

func TestPeekSkip(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101101, 6)
	w.WriteBits(0xff, 8)
	r := NewReader(w.Bytes())
	v, n := r.Peek(6)
	if n != 6 || v != 0b101101 {
		t.Fatalf("peek got %#b (%d bits)", v, n)
	}
	// Peek must not consume.
	v2, _ := r.Peek(6)
	if v2 != v {
		t.Fatalf("second peek differs: %#b vs %#b", v2, v)
	}
	if err := r.Skip(6); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(8)
	if err != nil || got != 0xff {
		t.Fatalf("got %#x err=%v", got, err)
	}
}

func TestPeekNearEnd(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1, 1)
	r := NewReader(w.Bytes())
	_, n := r.Peek(20)
	if n != 8 { // one padded byte
		t.Fatalf("avail=%d want 8", n)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(0)
	if w.BitLen() != 0 {
		t.Fatalf("empty BitLen=%d", w.BitLen())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen=%d want 13", w.BitLen())
	}
	for i := 0; i < 8; i++ {
		w.WriteBits(0, 64)
	}
	if w.BitLen() != 13+8*64 {
		t.Fatalf("BitLen=%d want %d", w.BitLen(), 13+8*64)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%200 + 1
		type rec struct {
			v uint64
			w uint
		}
		recs := make([]rec, count)
		wtr := NewWriter(0)
		for i := range recs {
			width := uint(rng.Intn(64) + 1)
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			recs[i] = rec{v, width}
			wtr.WriteBits(v, width)
		}
		rdr := NewReader(wtr.Bytes())
		for _, rc := range recs {
			got, err := rdr.ReadBits(rc.w)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsRemaining(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0, 16)
	r := NewReader(w.Bytes())
	if r.BitsRemaining() != 16 {
		t.Fatalf("remaining=%d want 16", r.BitsRemaining())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.BitsRemaining() != 11 {
		t.Fatalf("remaining=%d want 11", r.BitsRemaining())
	}
}

// Property: unary and gamma codes round-trip for adversarial mixes of
// small and large values (both codecs are now word-batched internally).
func TestUnaryGammaQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%100 + 1
		w := NewWriter(0)
		unary := make([]uint, count)
		gamma := make([]uint64, count)
		for i := 0; i < count; i++ {
			switch rng.Intn(3) {
			case 0:
				unary[i] = uint(rng.Intn(8))
			case 1:
				unary[i] = uint(rng.Intn(200)) // spans multiple words
			default:
				unary[i] = 0
			}
			gamma[i] = rng.Uint64() >> uint(1+rng.Intn(63))
			w.WriteUnary(unary[i])
			w.WriteGamma(gamma[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < count; i++ {
			u, err := r.ReadUnary()
			if err != nil || u != unary[i] {
				return false
			}
			g, err := r.ReadGamma()
			if err != nil || g != gamma[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignByteAndWriteBytes(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	w.AlignByte()
	if w.BitLen() != 8 {
		t.Fatalf("BitLen=%d want 8", w.BitLen())
	}
	w.AlignByte() // aligned: must be a no-op
	if w.BitLen() != 8 {
		t.Fatalf("BitLen after second align=%d want 8", w.BitLen())
	}
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	w.WriteBytes(payload)
	w.WriteBits(0x3f, 7)

	r := NewReader(w.Bytes())
	if v, err := r.ReadBits(3); err != nil || v != 0b101 {
		t.Fatalf("prefix=%d err=%v", v, err)
	}
	r.AlignByte()
	if off := r.ByteOffset(); off != 1 {
		t.Fatalf("ByteOffset=%d want 1", off)
	}
	for i, want := range payload {
		v, err := r.ReadBits(8)
		if err != nil || byte(v) != want {
			t.Fatalf("payload[%d]=%#x err=%v want %#x", i, v, err, want)
		}
	}
	if v, err := r.ReadBits(7); err != nil || v != 0x3f {
		t.Fatalf("suffix=%#x err=%v", v, err)
	}
}

func TestWriteBytesUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBytes on an unaligned writer did not panic")
		}
	}()
	w := NewWriter(0)
	w.WriteBit(1)
	w.WriteBytes([]byte{1})
}

// TestWriteBitsFastDrain checks the word-batched encode contract: packing
// through WriteBitsFast with DrainBytes whenever Free() runs low must
// produce the same stream as checked WriteBits calls.
func TestWriteBitsFastDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type rec struct {
		v uint64
		n uint
	}
	recs := make([]rec, 5000)
	ref := NewWriter(0)
	fast := NewWriter(0)
	for i := range recs {
		n := uint(rng.Intn(31) + 1)
		v := rng.Uint64() & (1<<n - 1)
		recs[i] = rec{v, n}
		ref.WriteBits(v, n)
		if fast.Free() < 32 {
			fast.DrainBytes()
		}
		fast.WriteBitsFast(v, n)
	}
	a, b := ref.Bytes(), fast.Bytes()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// TestRefillPeekSkip checks the unchecked reader fast path against the
// checked one, including the sub-word tail where Refill reports fewer
// than 56 bits.
func TestRefillPeekSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := NewWriter(0)
	vals := make([]uint64, 3000)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 13))
		w.WriteBits(vals[i], 13)
	}
	stream := w.Bytes()
	var r Reader
	r.Reset(stream)
	i := 0
	for ; i+4 <= len(vals) && r.Refill() >= 56; i += 4 {
		for k := 0; k < 4; k++ {
			if got := r.PeekFast(13); got != vals[i+k] {
				t.Fatalf("PeekFast at %d: %d want %d", i+k, got, vals[i+k])
			}
			r.SkipFast(13)
		}
	}
	if i == 0 {
		t.Fatal("fast path never engaged")
	}
	for ; i < len(vals); i++ {
		got, err := r.ReadBits(13)
		if err != nil || got != vals[i] {
			t.Fatalf("tail at %d: %d err=%v want %d", i, got, err, vals[i])
		}
	}
	if r.BitsRemaining() >= 8 {
		t.Fatalf("unread bits: %d", r.BitsRemaining())
	}
}
