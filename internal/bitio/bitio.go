// Package bitio provides bit-level serialization primitives used by the
// entropy-coding stages of the compressors in this repository (Huffman
// streams, the mini-ZFP embedded coder).
//
// Bits are packed least-significant-bit first into 64-bit words that are
// flushed little-endian, so a stream written on any platform decodes
// identically on any other.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Writer accumulates bits into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf   []byte
	acc   uint64 // bit accumulator, LSB-first
	nbits uint   // number of valid bits in acc
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	w := &Writer{}
	if sizeHint > 0 {
		w.buf = make([]byte, 0, sizeHint)
	}
	return w
}

// Reset clears the writer for reuse, keeping the buffer capacity. It lets
// per-block encoders recycle one Writer instead of allocating per block.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nbits = 0
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.acc |= uint64(b&1) << w.nbits
	w.nbits++
	if w.nbits == 64 {
		w.flushWord()
	}
}

// WriteBits appends the low n bits of v, LSB first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.acc |= v << w.nbits
	free := 64 - w.nbits
	if n < free {
		w.nbits += n
		return
	}
	// acc is full: flush and keep the spillover.
	spill := n - free
	w.flushWord()
	if spill > 0 {
		w.acc = v >> free
		w.nbits = spill
	}
}

// WriteUnary appends v as a unary code: v one-bits followed by a zero bit.
func (w *Writer) WriteUnary(v uint) {
	for i := uint(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

func (w *Writer) flushWord() {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], w.acc)
	w.buf = append(w.buf, tmp[:]...)
	w.acc = 0
	w.nbits = 0
}

// BitLen reports the number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbits)
}

// Bytes finalizes the stream and returns the packed bytes. Trailing bits in
// a partial word are zero-padded. The Writer may continue to be used; the
// padding becomes part of the stream, so callers should finalize once.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if w.nbits > 0 {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], w.acc)
		nb := (w.nbits + 7) / 8
		out = append(out, tmp[:nb]...)
		w.buf = out
		w.acc = 0
		w.nbits = 0
	}
	return out
}

// WriteGamma appends v as an Elias-gamma code of v+1 (so v = 0 is
// representable): a unary length prefix followed by the value bits,
// MSB-first.
func (w *Writer) WriteGamma(v uint64) {
	x := v + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.WriteBit(0)
	}
	for i := n; i >= 0; i-- {
		w.WriteBit(uint(x>>uint(i)) & 1)
	}
}

// ErrOutOfBits is returned when a Reader is asked for more bits than the
// underlying buffer holds.
var ErrOutOfBits = errors.New("bitio: read past end of stream")

// ErrGammaOverflow is returned when a gamma code's length prefix exceeds 63.
var ErrGammaOverflow = errors.New("bitio: gamma code overflow")

// Reader consumes bits from a byte slice produced by Writer.
type Reader struct {
	buf  []byte
	pos  int    // next byte index to load
	acc  uint64 // bit accumulator, LSB-first
	navl uint   // number of valid bits in acc
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset repositions the reader over buf, allowing a zero-value or used
// Reader to be recycled without allocation.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.acc = 0
	r.navl = 0
}

func (r *Reader) fill() {
	for r.navl <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << r.navl
		r.pos++
		r.navl += 8
	}
}

// ReadBit consumes and returns a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.navl == 0 {
		r.fill()
		if r.navl == 0 {
			return 0, ErrOutOfBits
		}
	}
	b := uint(r.acc & 1)
	r.acc >>= 1
	r.navl--
	return b, nil
}

// ReadBits consumes n bits (n in [0, 64]) and returns them LSB-first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	if r.navl < n {
		r.fill()
	}
	if r.navl >= n {
		var v uint64
		if n == 64 {
			v = r.acc
			r.acc = 0
			r.navl = 0
			r.fill()
			return v, nil
		}
		v = r.acc & ((1 << n) - 1)
		r.acc >>= n
		r.navl -= n
		return v, nil
	}
	// Straddles the end of what fill() could load: drain acc, then retry.
	got := r.navl
	v := r.acc
	r.acc = 0
	r.navl = 0
	r.fill()
	rest := n - got
	if r.navl < rest {
		return 0, ErrOutOfBits
	}
	hi := r.acc & ((1 << rest) - 1)
	r.acc >>= rest
	r.navl -= rest
	return v | hi<<got, nil
}

// ReadUnary consumes a unary code (ones terminated by a zero) and returns
// the count of ones.
func (r *Reader) ReadUnary() (uint, error) {
	var v uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// Peek returns up to n bits (n in [1, 57]) without consuming them. If the
// stream has fewer than n bits left, the missing high bits are zero. The
// second result is the number of real bits available.
func (r *Reader) Peek(n uint) (uint64, uint) {
	if n > 57 {
		panic("bitio: Peek limited to 57 bits")
	}
	if r.navl < n {
		r.fill()
	}
	avail := r.navl
	if avail > n {
		avail = n
	}
	return r.acc & ((1 << n) - 1), avail
}

// Skip consumes n bits, which must have been previously Peeked.
func (r *Reader) Skip(n uint) error {
	if r.navl < n {
		r.fill()
		if r.navl < n {
			return ErrOutOfBits
		}
	}
	r.acc >>= n
	r.navl -= n
	return nil
}

// ReadGamma decodes a code written by WriteGamma.
func (r *Reader) ReadGamma() (uint64, error) {
	var zeros int
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, ErrGammaOverflow
		}
	}
	x := uint64(1)
	for i := 0; i < zeros; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		x = x<<1 | uint64(b)
	}
	return x - 1, nil
}

// BitsRemaining reports a lower bound on the number of unread bits.
func (r *Reader) BitsRemaining() int {
	return int(r.navl) + (len(r.buf)-r.pos)*8
}
