// Package bitio provides bit-level serialization primitives used by the
// entropy-coding stages of the compressors in this repository (Huffman
// streams, the mini-ZFP embedded coder).
//
// Bits are packed least-significant-bit first into 64-bit words that are
// flushed little-endian, so a stream written on any platform decodes
// identically on any other.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Writer accumulates bits into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf   []byte
	acc   uint64 // bit accumulator, LSB-first
	nbits uint   // number of valid bits in acc
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	w := &Writer{}
	if sizeHint > 0 {
		w.buf = make([]byte, 0, sizeHint)
	}
	return w
}

// Reset clears the writer for reuse, keeping the buffer capacity. It lets
// per-block encoders recycle one Writer instead of allocating per block.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.nbits = 0
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.acc |= uint64(b&1) << w.nbits
	w.nbits++
	if w.nbits == 64 {
		w.flushWord()
	}
}

// WriteBits appends the low n bits of v, LSB first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.acc |= v << w.nbits
	free := 64 - w.nbits
	if n < free {
		w.nbits += n
		return
	}
	// acc is full: flush and keep the spillover.
	spill := n - free
	w.flushWord()
	if spill > 0 {
		w.acc = v >> free
		w.nbits = spill
	}
}

// WriteUnary appends v as a unary code: v one-bits followed by a zero bit.
// The run is emitted word-at-a-time through WriteBits rather than bit by
// bit.
func (w *Writer) WriteUnary(v uint) {
	for v >= 63 {
		w.WriteBits(^uint64(0), 63)
		v -= 63
	}
	// v one-bits then the terminating zero, LSB-first.
	w.WriteBits(1<<v-1, v+1)
}

// Free reports the unused bit capacity of the accumulator — how many bits
// WriteBitsFast may append before DrainBytes must run.
func (w *Writer) Free() uint { return 64 - w.nbits }

// WriteBitsFast appends n bits of v without capacity checks. The caller
// must guarantee Free() >= n (drain with DrainBytes otherwise) and that the
// bits of v above n are zero; both hold for Huffman (code,len) table
// entries packed after a DrainBytes. It exists so entropy-coding hot loops
// pay one bounds check per accumulator word instead of one per symbol.
func (w *Writer) WriteBitsFast(v uint64, n uint) {
	w.acc |= v << w.nbits
	w.nbits += n
}

// DrainBytes flushes the accumulator's complete bytes to the buffer,
// leaving at most 7 buffered bits (so Free() >= 57). The stream contents
// are unchanged; this only moves finished bytes out of the accumulator.
func (w *Writer) DrainBytes() {
	nb := w.nbits >> 3
	if nb == 0 {
		return
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], w.acc)
	w.buf = append(w.buf, tmp[:nb]...)
	w.acc >>= nb * 8
	w.nbits -= nb * 8
}

// AlignByte zero-pads the stream to the next byte boundary and drains the
// accumulator, so the next write (or WriteBytes) starts a fresh byte.
func (w *Writer) AlignByte() {
	if pad := (8 - w.nbits%8) % 8; pad > 0 {
		w.WriteBits(0, pad)
	}
	w.DrainBytes()
}

// WriteBytes appends p verbatim. The writer must be byte-aligned
// (AlignByte); sub-byte state would silently corrupt the stream, so this
// panics instead.
func (w *Writer) WriteBytes(p []byte) {
	if w.nbits != 0 {
		panic("bitio: WriteBytes on unaligned writer")
	}
	w.buf = append(w.buf, p...)
}

func (w *Writer) flushWord() {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], w.acc)
	w.buf = append(w.buf, tmp[:]...)
	w.acc = 0
	w.nbits = 0
}

// BitLen reports the number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbits)
}

// Bytes finalizes the stream and returns the packed bytes. Trailing bits in
// a partial word are zero-padded. The Writer may continue to be used; the
// padding becomes part of the stream, so callers should finalize once.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if w.nbits > 0 {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], w.acc)
		nb := (w.nbits + 7) / 8
		out = append(out, tmp[:nb]...)
		w.buf = out
		w.acc = 0
		w.nbits = 0
	}
	return out
}

// WriteGamma appends v as an Elias-gamma code of v+1 (so v = 0 is
// representable): a unary length prefix followed by the value bits,
// MSB-first. The prefix and the value are emitted as two WriteBits calls
// (the MSB-first value bits become an LSB-first word by bit reversal).
func (w *Writer) WriteGamma(v uint64) {
	x := v + 1
	if x == 0 { // v == MaxUint64: degenerate, matches the historic encoding
		w.WriteBit(0)
		return
	}
	n := uint(bits.Len64(x)) - 1
	w.WriteBits(0, n)
	w.WriteBits(bits.Reverse64(x)>>(63-n), n+1)
}

// ErrOutOfBits is returned when a Reader is asked for more bits than the
// underlying buffer holds.
var ErrOutOfBits = errors.New("bitio: read past end of stream")

// ErrGammaOverflow is returned when a gamma code's length prefix exceeds 63.
var ErrGammaOverflow = errors.New("bitio: gamma code overflow")

// Reader consumes bits from a byte slice produced by Writer.
type Reader struct {
	buf  []byte
	pos  int    // next byte index to load
	acc  uint64 // bit accumulator, LSB-first
	navl uint   // number of valid bits in acc
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset repositions the reader over buf, allowing a zero-value or used
// Reader to be recycled without allocation.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.acc = 0
	r.navl = 0
}

func (r *Reader) fill() {
	// Word-level top-up: load 8 bytes at once and advance by however many
	// whole bytes fit the accumulator, falling back to byte loads only for
	// the final partial word of the buffer.
	if r.navl < 56 && r.pos+8 <= len(r.buf) {
		w := binary.LittleEndian.Uint64(r.buf[r.pos:])
		r.acc |= w << r.navl
		adv := (63 - r.navl) >> 3
		r.pos += int(adv)
		r.navl += adv * 8
		// Only adv whole bytes were consumed: bits of w above the new valid
		// count land in acc but belong to bytes not yet advanced past, so
		// they must be cleared to keep the "bits >= navl are zero" invariant
		// (Peek, ReadUnary and ReadGamma all rely on it).
		r.acc &= 1<<r.navl - 1
	}
	for r.navl <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << r.navl
		r.pos++
		r.navl += 8
	}
}

// Refill tops the accumulator up so it holds at least 56 valid bits
// whenever the buffer still has that much data, and returns the valid bit
// count. After a Refill returning >= 56, PeekFast/SkipFast may consume up
// to 56 bits with no further checks — the batched fast path of the Huffman
// and bit-plane decoders.
func (r *Reader) Refill() uint {
	if r.navl >= 56 {
		return r.navl
	}
	r.fill()
	return r.navl
}

// PeekFast returns the next n bits without consuming them and without
// bounds checks. Bits beyond the valid count read as zero; the caller is
// responsible for having established availability via Refill.
func (r *Reader) PeekFast(n uint) uint64 { return r.acc & (1<<n - 1) }

// SkipFast consumes n bits with no bounds checks; n must not exceed the
// valid bit count established by Refill.
func (r *Reader) SkipFast(n uint) {
	r.acc >>= n
	r.navl -= n
}

// AlignByte discards bits up to the next byte boundary of the underlying
// stream (a no-op when already aligned).
func (r *Reader) AlignByte() {
	drop := r.navl % 8
	r.acc >>= drop
	r.navl -= drop
}

// ByteOffset returns the buffer index of the next unread bit. The reader
// must be byte-aligned (AlignByte); it is used to locate byte-framed
// payloads (e.g. Huffman lane segments) after a bit-packed header.
func (r *Reader) ByteOffset() int { return r.pos - int(r.navl)/8 }

// ReadBit consumes and returns a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.navl == 0 {
		r.fill()
		if r.navl == 0 {
			return 0, ErrOutOfBits
		}
	}
	b := uint(r.acc & 1)
	r.acc >>= 1
	r.navl--
	return b, nil
}

// ReadBits consumes n bits (n in [0, 64]) and returns them LSB-first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	if r.navl < n {
		r.fill()
	}
	if r.navl >= n {
		var v uint64
		if n == 64 {
			v = r.acc
			r.acc = 0
			r.navl = 0
			r.fill()
			return v, nil
		}
		v = r.acc & ((1 << n) - 1)
		r.acc >>= n
		r.navl -= n
		return v, nil
	}
	// Straddles the end of what fill() could load: drain acc, then retry.
	got := r.navl
	v := r.acc
	r.acc = 0
	r.navl = 0
	r.fill()
	rest := n - got
	if r.navl < rest {
		return 0, ErrOutOfBits
	}
	hi := r.acc & ((1 << rest) - 1)
	r.acc >>= rest
	r.navl -= rest
	return v | hi<<got, nil
}

// ReadUnary consumes a unary code (ones terminated by a zero) and returns
// the count of ones. The run is scanned a word at a time via trailing-zero
// counts instead of per-bit reads.
func (r *Reader) ReadUnary() (uint, error) {
	var v uint
	for {
		r.fill()
		if r.navl == 0 {
			return 0, ErrOutOfBits
		}
		// Bits above navl in acc are zero, so ^acc has ones there and the
		// trailing-zero count of ^acc never overshoots the valid range by
		// more than "all navl bits are ones".
		tz := uint(bits.TrailingZeros64(^r.acc))
		if tz >= r.navl {
			v += r.navl
			r.acc = 0
			r.navl = 0
			continue
		}
		r.acc >>= tz + 1
		r.navl -= tz + 1
		return v + tz, nil
	}
}

// Peek returns up to n bits (n in [1, 57]) without consuming them. If the
// stream has fewer than n bits left, the missing high bits are zero. The
// second result is the number of real bits available.
func (r *Reader) Peek(n uint) (uint64, uint) {
	if n > 57 {
		panic("bitio: Peek limited to 57 bits")
	}
	if r.navl < n {
		r.fill()
	}
	avail := r.navl
	if avail > n {
		avail = n
	}
	return r.acc & ((1 << n) - 1), avail
}

// Skip consumes n bits, which must have been previously Peeked.
func (r *Reader) Skip(n uint) error {
	if r.navl < n {
		r.fill()
		if r.navl < n {
			return ErrOutOfBits
		}
	}
	r.acc >>= n
	r.navl -= n
	return nil
}

// ReadGamma decodes a code written by WriteGamma. The zero-run prefix is
// scanned word-at-a-time and the value bits are read in one ReadBits call
// (bit-reversed back to MSB-first).
func (r *Reader) ReadGamma() (uint64, error) {
	var zeros uint
	for {
		r.fill()
		if r.navl == 0 {
			return 0, ErrOutOfBits
		}
		tz := uint(bits.TrailingZeros64(r.acc))
		if tz >= r.navl {
			zeros += r.navl
			r.acc = 0
			r.navl = 0
			if zeros > 63 {
				return 0, ErrGammaOverflow
			}
			continue
		}
		zeros += tz
		r.acc >>= tz + 1
		r.navl -= tz + 1
		break
	}
	if zeros > 63 {
		return 0, ErrGammaOverflow
	}
	if zeros == 0 {
		return 0, nil
	}
	v, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	x := uint64(1)<<zeros | bits.Reverse64(v)>>(64-zeros)
	return x - 1, nil
}

// BitsRemaining reports a lower bound on the number of unread bits.
func (r *Reader) BitsRemaining() int {
	return int(r.navl) + (len(r.buf)-r.pos)*8
}
